module Clip = Optrouter_grid.Clip
module Design = Optrouter_design.Design
module Tech = Optrouter_tech.Tech
module Rect = Optrouter_geom.Rect
module Point = Optrouter_geom.Point
module Global = Optrouter_global.Global

type params = {
  window_cols : int;
  window_rows : int;
  layers : int;
  max_nets : int;
  min_nets : int;
  stride_cols : int;
  stride_rows : int;
  include_pass_throughs : bool;
}

let paper_params tech =
  let cols, rows = Tech.clip_tracks_1um tech in
  {
    window_cols = cols;
    window_rows = rows;
    layers = tech.Tech.num_layers;
    max_nets = 12;
    min_nets = 2;
    stride_cols = cols;
    stride_rows = rows;
    include_pass_throughs = true;
  }

let reduced_params =
  {
    window_cols = 5;
    window_rows = 5;
    layers = 4;
    max_nets = 3;
    min_nets = 2;
    stride_cols = 5;
    stride_rows = 5;
    include_pass_throughs = false;
  }

(* Place a boundary port for a net that leaves the window, on the side the
   outside pins pull towards. Returns a free (col, row) or None if the
   preferred boundary positions are all taken. *)
let port_position ~cols ~rows ~taken (inside_x, inside_y) (out_x, out_y) =
  let dx = out_x - inside_x and dy = out_y - inside_y in
  let clamp v lo hi = max lo (min hi v) in
  let candidates =
    if abs dx >= abs dy then
      (* exit left or right *)
      let x = if dx >= 0 then cols - 1 else 0 in
      List.init rows (fun i ->
          let y0 = clamp inside_y 0 (rows - 1) in
          let y = (y0 + i) mod rows in
          (x, y))
    else
      let y = if dy >= 0 then rows - 1 else 0 in
      List.init cols (fun i ->
          let x0 = clamp inside_x 0 (cols - 1) in
          let x = (x0 + i) mod cols in
          (x, y))
  in
  List.find_opt (fun p -> not (Hashtbl.mem taken p)) candidates

let windows params (d : Design.t) =
  let total_cols, total_rows = Design.extent d in
  let tech = d.Design.tech in
  let clips = ref [] in
  let conns_of_net (net : Design.dnet) = net.Design.driver :: net.Design.loads in
  (* Access positions are computed once per connection, and nets are
     bucketed by the window tiles their pins land in, so each window only
     examines nets that actually touch it. *)
  let located_nets =
    Array.map
      (fun (net : Design.dnet) ->
        ( net,
          List.map (fun conn -> (conn, Design.access_positions d conn)) (conns_of_net net) ))
      d.Design.nets
  in
  let global_routes =
    if params.include_pass_throughs then
      Some
        (Global.route ~cell_w:params.window_cols ~cell_h:params.window_rows d)
    else None
  in
  let nwx = max 0 (((total_cols - params.window_cols) / params.stride_cols) + 1) in
  let nwy = max 0 (((total_rows - params.window_rows) / params.stride_rows) + 1) in
  let buckets = Hashtbl.create 1024 in
  let window_indices_of_point (x, y) =
    (* all window grid indices (ix, iy) whose window contains (x, y) *)
    let range pos extent stride count =
      let lo = max 0 (((pos - extent + 1) + stride - 1) / stride) in
      let hi = min (count - 1) (pos / stride) in
      if hi < lo then [] else List.init (hi - lo + 1) (fun i -> lo + i)
    in
    let xs = range x params.window_cols params.stride_cols nwx in
    let ys = range y params.window_rows params.stride_rows nwy in
    List.concat_map (fun ix -> List.map (fun iy -> (ix, iy)) ys) xs
  in
  Array.iteri
    (fun ni (_, conns) ->
      let seen = Hashtbl.create 8 in
      List.iter
        (fun (_, pts) ->
          List.iter
            (fun pt ->
              List.iter
                (fun key ->
                  if not (Hashtbl.mem seen key) then begin
                    Hashtbl.add seen key ();
                    let old = Option.value ~default:[] (Hashtbl.find_opt buckets key) in
                    Hashtbl.replace buckets key (ni :: old)
                  end)
                (window_indices_of_point pt))
            pts)
        conns)
    located_nets;
  let wx = ref 0 in
  while !wx + params.window_cols <= total_cols do
    let wy = ref 0 in
    while !wy + params.window_rows <= total_rows do
      let x0 = !wx and y0 = !wy in
      let x1 = x0 + params.window_cols - 1 and y1 = y0 + params.window_rows - 1 in
      let inside (x, y) = x >= x0 && x <= x1 && y >= y0 && y <= y1 in
      let taken = Hashtbl.create 32 in
      let candidates = ref [] in
      let key = (x0 / params.stride_cols, y0 / params.stride_rows) in
      let net_ids = Option.value ~default:[] (Hashtbl.find_opt buckets key) in
      List.iter
        (fun ni ->
          let net, conns = located_nets.(ni) in
          let located =
            List.map (fun (conn, pts) -> (conn, pts, List.filter inside pts)) conns
          in
          let inside_conns =
            List.filter (fun (_, _, ins) -> ins <> []) located
          in
          let outside_conns =
            List.filter (fun (_, _, ins) -> ins = []) located
          in
          if inside_conns <> [] then
            candidates := (net, inside_conns, outside_conns) :: !candidates)
        net_ids;
      (* larger nets first, cap at max_nets *)
      let ranked =
        List.sort
          (fun (_, a, _) (_, b, _) ->
            Int.compare (List.length b) (List.length a))
          !candidates
      in
      let rec take n = function
        | [] -> []
        | _ when n = 0 -> []
        | x :: rest -> x :: take (n - 1) rest
      in
      let chosen = take params.max_nets ranked in
      let window_origin_nm =
        Point.make (x0 * tech.Tech.vpitch) (y0 * tech.Tech.hpitch)
      in
      let local (x, y) = (x - x0, y - y0) in
      let mk_pin conn pts =
        let access = List.map local pts in
        List.iter (fun p -> Hashtbl.replace taken p ()) access;
        let shape =
          let global = Design.pin_shape d conn in
          Some
            (Rect.translate global
               (Point.make (-window_origin_nm.Point.x) (-window_origin_nm.Point.y)))
        in
        let inst = d.Design.instances.(conn.Design.inst) in
        {
          Clip.p_name = inst.Design.i_name ^ "/" ^ conn.Design.pin;
          access;
          shape;
        }
      in
      let nets =
        List.filter_map
          (fun ((net : Design.dnet), inside_conns, outside_conns) ->
            let pins =
              List.map (fun (conn, _, ins) -> mk_pin conn ins) inside_conns
            in
            let needs_port = outside_conns <> [] in
            let port =
              if not needs_port then None
              else begin
                (* representative inside / outside points steer the port *)
                let inside_pt =
                  match pins with
                  | { Clip.access = (x, y) :: _; _ } :: _ -> (x + x0, y + y0)
                  | _ -> (x0, y0)
                in
                let out_pt =
                  match outside_conns with
                  | (_, pt :: _, _) :: _ -> pt
                  | _ -> (total_cols / 2, total_rows / 2)
                in
                match
                  port_position ~cols:params.window_cols
                    ~rows:params.window_rows ~taken
                    (local inside_pt) (local out_pt)
                with
                | Some p ->
                  Hashtbl.replace taken p ();
                  Some { Clip.p_name = net.Design.dn_name ^ "/port"; access = [ p ]; shape = None }
                | None -> None
              end
            in
            let pins = match port with Some p -> pins @ [ p ] | None -> pins in
            if List.length pins >= 2 then
              Some { Clip.n_name = net.Design.dn_name; pins }
            else None)
          chosen
      in
      (* Pass-through nets from the global routing: a crossing net enters
         and leaves the window; model it as a 2-pin net between boundary
         ports on the crossed sides. *)
      let nets =
        match global_routes with
        | None -> nets
        | Some gr ->
          let budget = params.max_nets - List.length nets in
          if budget <= 0 then nets
          else begin
            let gx = x0 / params.stride_cols and gy = y0 / params.stride_rows in
            let present = Hashtbl.create 8 in
            List.iter
              (fun (n : Clip.net) -> Hashtbl.replace present n.Clip.n_name ())
              nets;
            let thru =
              Global.nets_through gr ~gx ~gy
              |> List.filter (fun ni ->
                     not
                       (Hashtbl.mem present
                          d.Design.nets.(ni).Design.dn_name))
              |> List.filter (fun ni ->
                     List.length (Global.crossings gr ~net:ni ~gx ~gy) >= 2)
            in
            let rec take n = function
              | [] -> []
              | _ when n = 0 -> []
              | x :: rest -> x :: take (n - 1) rest
            in
            let side_port (gx', gy') =
              (* a free position on the boundary facing the neighbour *)
              let candidates =
                if gx' > gx then
                  List.init params.window_rows (fun i ->
                      (params.window_cols - 1, i))
                else if gx' < gx then
                  List.init params.window_rows (fun i -> (0, i))
                else if gy' > gy then
                  List.init params.window_cols (fun i ->
                      (i, params.window_rows - 1))
                else List.init params.window_cols (fun i -> (i, 0))
              in
              (* walk outward from the middle of the side *)
              let mid = List.length candidates / 2 in
              let ordered =
                List.sort
                  (fun a b ->
                    let pos l p =
                      let rec go i = function
                        | [] -> max_int
                        | q :: rest -> if q = p then i else go (i + 1) rest
                      in
                      go 0 l
                    in
                    compare
                      (abs (pos candidates a - mid))
                      (abs (pos candidates b - mid)))
                  candidates
              in
              List.find_opt (fun p -> not (Hashtbl.mem taken p)) ordered
            in
            let extra =
              List.filter_map
                (fun ni ->
                  match Global.crossings gr ~net:ni ~gx ~gy with
                  | side1 :: side2 :: _ -> (
                    match side_port side1 with
                    | None -> None
                    | Some p1 ->
                      Hashtbl.replace taken p1 ();
                      (match side_port side2 with
                      | None ->
                        Hashtbl.remove taken p1;
                        None
                      | Some p2 ->
                        Hashtbl.replace taken p2 ();
                        let name = d.Design.nets.(ni).Design.dn_name in
                        Some
                          {
                            Clip.n_name = name;
                            pins =
                              [
                                { Clip.p_name = name ^ "/in"; access = [ p1 ]; shape = None };
                                { Clip.p_name = name ^ "/out"; access = [ p2 ]; shape = None };
                              ];
                          }))
                  | _ -> None)
                (take budget thru)
            in
            nets @ extra
          end
      in
      if List.length nets >= params.min_nets then begin
        let clip =
          Clip.make
            ~name:(Printf.sprintf "%s@%d_%d" d.Design.d_name x0 y0)
            ~tech_name:tech.Tech.name ~cols:params.window_cols
            ~rows:params.window_rows ~layers:params.layers nets
        in
        match Clip.validate clip with
        | Ok () -> clips := clip :: !clips
        | Error _ ->
          (* overlapping access points across nets can occur when two pins
             share a track position; drop such windows *)
          ()
      end;
      wy := !wy + params.stride_rows
    done;
    wx := !wx + params.stride_cols
  done;
  List.rev !clips

let top_k k clips =
  let scored = List.map (fun c -> (c, Pin_cost.total c)) clips in
  let sorted = List.sort (fun (_, a) (_, b) -> Float.compare b a) scored in
  let rec take n = function
    | [] -> []
    | _ when n = 0 -> []
    | x :: rest -> x :: take (n - 1) rest
  in
  take k sorted
