module Clip = Optrouter_grid.Clip
module Rect = Optrouter_geom.Rect

let default_theta = 500.0

let shapes (clip : Clip.t) =
  List.concat_map
    (fun (net : Clip.net) ->
      List.filter_map (fun (p : Clip.pin) -> p.Clip.shape) net.Clip.pins)
    clip.Clip.nets

let pec (clip : Clip.t) = float_of_int (Clip.num_pins clip)

(* Pin areas are measured in units of 10*theta nm^2 so that, with
   theta = 500, typical standard-cell pins (4e3..2e5 nm^2) land in the
   exponent range the metric discriminates on: tiny 7nm pins score near
   2^1.3, large 12-track fingers near 2^-6. *)
let pac ?(theta = default_theta) clip =
  List.fold_left
    (fun acc shape ->
      let area = float_of_int (Rect.area shape) in
      acc +. Float.pow 2.0 (2.0 -. (area /. (10.0 *. theta))))
    0.0 (shapes clip)

let prc ?(theta = default_theta) clip =
  let rec pairs acc = function
    | [] -> acc
    | s :: rest ->
      let acc =
        List.fold_left
          (fun acc s' ->
            let spacing = float_of_int (Rect.distance s s') in
            acc +. Float.pow 2.0 (2.0 -. (spacing /. (3.0 *. theta))))
          acc rest
      in
      pairs acc rest
  in
  pairs 0.0 (shapes clip)

let total ?theta clip = pec clip +. pac ?theta clip +. prc ?theta clip
