lib/clips/extract.ml: Array Float Hashtbl Int List Option Optrouter_design Optrouter_geom Optrouter_global Optrouter_grid Optrouter_tech Pin_cost Printf
