lib/clips/extract.mli: Optrouter_design Optrouter_grid Optrouter_tech
