lib/clips/pin_cost.mli: Optrouter_grid
