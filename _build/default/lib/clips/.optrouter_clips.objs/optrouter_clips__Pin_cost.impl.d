lib/clips/pin_cost.ml: Float List Optrouter_geom Optrouter_grid
