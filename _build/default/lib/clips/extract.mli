(** Clip extraction from placed designs (Figure 6, left side).

    The chip is tiled with windows of the requested track dimensions; each
    window becomes a clip holding the nets with pins inside it. A net with
    exactly one pin in the window and others outside gets a synthetic
    {e port} pin on the window boundary facing the outside pins — the role
    the global route plays in the paper's flow. Windows with fewer than
    [min_nets] usable nets are discarded, and a window's net list is capped
    at [max_nets] (largest pin count first) to keep ILP instances within
    the solver's reach. *)

type params = {
  window_cols : int;
  window_rows : int;
  layers : int;
  max_nets : int;
  min_nets : int;
  stride_cols : int;
  stride_rows : int;
  include_pass_throughs : bool;
      (** also include nets whose {e global route} crosses the window
          without having pins in it, as boundary-port to boundary-port
          nets — the routed-layout context the paper's clips carry. Uses
          {!Optrouter_global.Global} with one gcell per window; requires
          [stride = window] alignment. *)
}

(** Paper-scale windows: the technology's 1.0um x 1.0um clip (7 x 10 tracks
    in 28nm) with all 8 routing layers, up to 12 nets. *)
val paper_params : Optrouter_tech.Tech.t -> params

(** Reduced windows sized for the pure-OCaml MILP solver (see DESIGN.md):
    ~5 x 5 tracks, 4 layers, at most 3 nets. *)
val reduced_params : params

(** All clips of a design under the given tiling. Clip names encode the
    design and window position. *)
val windows : params -> Optrouter_design.Design.t -> Optrouter_grid.Clip.t list

(** [top_k k clips] are the [k] highest pin-cost clips, cost descending. *)
val top_k : int -> Optrouter_grid.Clip.t list -> (Optrouter_grid.Clip.t * float) list
