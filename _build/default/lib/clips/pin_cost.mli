(** Pin cost metric of Taghavi et al. [15], used to rank clips by routing
    difficulty (Section 4, "Extraction of routing clips").

    - PEC (pin existence cost): the number of pins;
    - PAC (pin area cost): sum over pins of [2^(2 - area(p) / theta)] —
      smaller pins cost more;
    - PRC (pin spacing cost): sum over pin pairs of
      [2^(2 - spacing(p_i, p_j) / (3 theta))] — closer pins cost more.

    The clip's pin cost is PEC + PAC + PRC with theta = 500. Areas are in
    units of 10*theta nm^2 and spacings in nm, chosen (like the paper's
    theta) so the terms land in a comparable range; only the {e ranking}
    of clips matters downstream. Port pins synthesised at clip boundaries
    carry no shape and contribute to PEC only. *)

val default_theta : float

val pec : Optrouter_grid.Clip.t -> float
val pac : ?theta:float -> Optrouter_grid.Clip.t -> float
val prc : ?theta:float -> Optrouter_grid.Clip.t -> float

(** [total ?theta clip] = PEC + PAC + PRC. *)
val total : ?theta:float -> Optrouter_grid.Clip.t -> float
