(* Global routing context (Section 4, "Extraction of routing clips").

   The paper harvests clips from routed layouts, so a clip sees not only
   the nets with pins inside its window but also the nets the global
   router sends through it. This example globally routes a synthetic
   design over gcells the size of a clip window, prints the congestion
   heat map, and contrasts clip extraction with and without pass-through
   nets.

   Run with: dune exec examples/global_route.exe *)

module Tech = Optrouter_tech.Tech
module Design = Optrouter_design.Design
module Global = Optrouter_global.Global
module Extract = Optrouter_clips.Extract
module Clip = Optrouter_grid.Clip

let () =
  let tech = Tech.n28_8t in
  let profile = { Design.aes with Design.instance_count = 500 } in
  let design = Design.generate ~seed:3 profile ~util:0.92 tech in
  Printf.printf "design: %s\n\n" (Format.asprintf "%a" Design.pp design);
  let params = Extract.reduced_params in
  let gr =
    Global.route ~cell_w:params.Extract.window_cols
      ~cell_h:params.Extract.window_rows design
  in
  let ngx, ngy = Global.grid_size gr in
  let c = Global.congestion gr in
  Printf.printf "global routing over a %dx%d gcell grid:\n" ngx ngy;
  Printf.printf "  %d/%d gcell boundaries carry wires, peak demand %d, %d over capacity\n\n"
    c.Global.used_edges c.Global.total_edges c.Global.max_usage
    c.Global.overflowed;
  print_endline "congestion heat map (wire demand per gcell):";
  print_string (Global.render_congestion gr);
  print_newline ();
  let plain = Extract.windows params design in
  let with_thru =
    Extract.windows { params with Extract.include_pass_throughs = true } design
  in
  let net_count clips =
    List.fold_left (fun acc c -> acc + Clip.num_nets c) 0 clips
  in
  Printf.printf
    "clip extraction: %d clips with %d nets (pins only) vs %d clips with %d \
     nets (with pass-throughs)\n"
    (List.length plain) (net_count plain) (List.length with_thru)
    (net_count with_thru);
  match with_thru with
  | clip :: _ ->
    Printf.printf "\nfirst clip with routed context:\n%s\n"
      (Format.asprintf "%a" Clip.pp clip)
  | [] -> ()
