examples/paper_size.mli:
