examples/pin_access_7nm.mli:
