examples/quickstart.mli:
