examples/sadp_study.mli:
