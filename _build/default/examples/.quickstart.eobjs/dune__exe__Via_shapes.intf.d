examples/via_shapes.mli:
