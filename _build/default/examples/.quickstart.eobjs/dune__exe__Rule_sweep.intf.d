examples/rule_sweep.mli:
