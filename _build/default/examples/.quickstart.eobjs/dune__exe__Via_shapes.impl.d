examples/via_shapes.ml: Optrouter_core Optrouter_grid Optrouter_tech Printf
