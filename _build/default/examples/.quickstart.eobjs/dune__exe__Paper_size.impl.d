examples/paper_size.ml: Filename Format List Optrouter_core Optrouter_grid Optrouter_ilp Optrouter_maze Optrouter_tech Printf
