examples/quickstart.ml: Format Optrouter_core Optrouter_grid Optrouter_tech Printf
