examples/sadp_study.ml: Format List Optrouter_core Optrouter_grid Optrouter_tech Printf
