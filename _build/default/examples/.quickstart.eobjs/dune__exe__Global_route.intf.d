examples/global_route.mli:
