examples/optimality_gap.mli:
