(* Paper-size instances (Section 4: 1.0um x 1.0um clips = 7x10 tracks,
   8 layers).

   This example builds a full paper-size clip, reports the routing graph
   and ILP sizes for several rule configurations (the numbers behind the
   Section 4.2 complexity analysis), and routes the clip heuristically.
   It does NOT run the exact solve — at this size even the LP relaxation
   takes the bundled simplex a long while (CPLEX needed ~15 minutes per
   clip in the paper); the full ILP is dumped to a .lp file instead, to
   hand to any MILP solver.

   Run with: dune exec examples/paper_size.exe *)

module Clip = Optrouter_grid.Clip
module Graph = Optrouter_grid.Graph
module Tech = Optrouter_tech.Tech
module Rules = Optrouter_tech.Rules
module Route = Optrouter_grid.Route
module Formulate = Optrouter_core.Formulate
module Maze = Optrouter_maze.Maze
module Lp_file = Optrouter_ilp.Lp_file

let pin name access = { Clip.p_name = name; access; shape = None }

(* A hand-built paper-size clip: 7 columns x 10 rows x 8 layers with six
   nets of 2-3 pins, mimicking the density of the paper's top-100 clips. *)
let clip =
  let two name p1 p2 = { Clip.n_name = name; pins = [ pin (name ^ "s") [ p1 ]; pin (name ^ "t") [ p2 ] ] } in
  let three name p1 p2 p3 =
    { Clip.n_name = name;
      pins = [ pin (name ^ "s") [ p1 ]; pin (name ^ "t1") [ p2 ]; pin (name ^ "t2") [ p3 ] ] }
  in
  Clip.make ~name:"paper-size" ~tech_name:"N28-12T" ~cols:7 ~rows:10 ~layers:8
    [
      three "n0" (0, 0) (6, 3) (3, 9);
      two "n1" (1, 1) (5, 8);
      two "n2" (2, 0) (2, 7);
      three "n3" (6, 0) (0, 6) (4, 4);
      two "n4" (0, 9) (6, 9);
      two "n5" (1, 5) (5, 2);
    ]

let () =
  let tech = Tech.n28_12t in
  Printf.printf "paper-size clip: %dx%d tracks, %d layers, %d nets\n\n"
    clip.Clip.cols clip.Clip.rows clip.Clip.layers (Clip.num_nets clip);
  Printf.printf "%-28s %8s %8s %8s %9s\n" "rule configuration" "|V|" "|A|"
    "vars" "rows";
  List.iter
    (fun rn ->
      let rules = Rules.rule rn in
      let g = Graph.build ~tech ~rules clip in
      let form = Formulate.build ~rules g in
      let s = Formulate.sizes form in
      Printf.printf "%-28s %8d %8d %8d %9d\n"
        (Format.asprintf "%a" Rules.pp rules)
        g.Graph.nverts
        (2 * Graph.num_edges g)
        s.Formulate.vars s.Formulate.rows)
    [ 1; 3; 8 ];
  print_newline ();
  (* Heuristic routing is fast even at paper size. *)
  let rules = Rules.rule 1 in
  let g = Graph.build ~tech ~rules clip in
  (match (Maze.route ~rules g).Maze.solution with
  | Some sol ->
    Printf.printf "heuristic routing: cost=%d wirelength=%d vias=%d\n"
      sol.Route.metrics.cost sol.Route.metrics.wirelength sol.Route.metrics.vias
  | None -> print_endline "heuristic routing failed");
  let form = Formulate.build ~rules g in
  let path = Filename.temp_file "paper_size" ".lp" in
  Lp_file.write_file path (Formulate.lp form);
  Printf.printf "full ILP written to %s (feed it to any MILP solver)\n" path
