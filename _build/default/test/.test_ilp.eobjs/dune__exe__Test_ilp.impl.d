test/test_ilp.ml: Alcotest Array Float Format List Optrouter_ilp Printf QCheck QCheck_alcotest Result String Sys
