test/test_tech.ml: Alcotest List Optrouter_tech Printf
