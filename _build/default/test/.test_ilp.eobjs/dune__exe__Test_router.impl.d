test/test_router.ml: Alcotest Array Float Format Fun List Optrouter_core Optrouter_grid Optrouter_ilp Optrouter_maze Optrouter_tech Printf QCheck QCheck_alcotest Result
