test/test_router.mli:
