test/test_geom.ml: Alcotest Format List Option Optrouter_geom QCheck QCheck_alcotest
