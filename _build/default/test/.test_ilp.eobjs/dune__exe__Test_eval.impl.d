test/test_eval.ml: Alcotest Array List Optrouter_core Optrouter_eval Optrouter_grid Optrouter_ilp Optrouter_report Optrouter_tech String
