(* Tests for the geometry substrate: points, intervals, rectangles. *)

module Point = Optrouter_geom.Point
module Interval = Optrouter_geom.Interval
module Rect = Optrouter_geom.Rect

let qtest = QCheck_alcotest.to_alcotest

(* ------------------------------------------------------------------ *)
(* Point                                                               *)
(* ------------------------------------------------------------------ *)

let test_point_arith () =
  let a = Point.make 3 4 and b = Point.make (-1) 2 in
  Alcotest.(check bool) "add" true (Point.equal (Point.add a b) (Point.make 2 6));
  Alcotest.(check bool) "sub" true (Point.equal (Point.sub a b) (Point.make 4 2));
  Alcotest.(check int) "manhattan" 6 (Point.manhattan a b);
  Alcotest.(check int) "chebyshev" 4 (Point.chebyshev a b);
  Alcotest.(check int) "self distance" 0 (Point.manhattan a a)

let test_point_compare_total_order () =
  let pts = [ Point.make 1 2; Point.make 0 5; Point.make 1 0; Point.make 0 5 ] in
  let sorted = List.sort Point.compare pts in
  match sorted with
  | [ p1; p2; p3; p4 ] ->
    Alcotest.(check bool) "ordered" true
      (Point.compare p1 p2 <= 0 && Point.compare p2 p3 <= 0
      && Point.compare p3 p4 <= 0)
  | _ -> Alcotest.fail "length"

let point_gen =
  QCheck.Gen.(
    let* x = int_range (-1000) 1000 in
    let* y = int_range (-1000) 1000 in
    return (Point.make x y))

let arbitrary_point = QCheck.make ~print:Point.to_string point_gen

let prop_manhattan_triangle =
  QCheck.Test.make ~name:"manhattan satisfies the triangle inequality" ~count:200
    (QCheck.triple arbitrary_point arbitrary_point arbitrary_point)
    (fun (a, b, c) ->
      Point.manhattan a c <= Point.manhattan a b + Point.manhattan b c)

let prop_chebyshev_le_manhattan =
  QCheck.Test.make ~name:"chebyshev <= manhattan <= 2 * chebyshev" ~count:200
    (QCheck.pair arbitrary_point arbitrary_point)
    (fun (a, b) ->
      let m = Point.manhattan a b and c = Point.chebyshev a b in
      c <= m && m <= 2 * c)

(* ------------------------------------------------------------------ *)
(* Interval                                                            *)
(* ------------------------------------------------------------------ *)

let test_interval_basics () =
  let i = Interval.make 2 5 in
  Alcotest.(check bool) "not empty" false (Interval.is_empty i);
  Alcotest.(check int) "length" 3 (Interval.length i);
  Alcotest.(check int) "cardinal" 4 (Interval.cardinal i);
  Alcotest.(check bool) "contains" true (Interval.contains i 3);
  Alcotest.(check bool) "excludes" false (Interval.contains i 6);
  let empty = Interval.make 5 2 in
  Alcotest.(check bool) "empty" true (Interval.is_empty empty);
  Alcotest.(check int) "empty length" 0 (Interval.length empty);
  Alcotest.(check int) "empty cardinal" 0 (Interval.cardinal empty)

let test_interval_of_endpoints () =
  Alcotest.(check bool) "ordered" true
    (Interval.equal (Interval.of_endpoints 7 3) (Interval.make 3 7))

let test_interval_set_ops () =
  let a = Interval.make 0 4 and b = Interval.make 3 8 and c = Interval.make 6 9 in
  Alcotest.(check bool) "overlap" true (Interval.overlaps a b);
  Alcotest.(check bool) "disjoint" false (Interval.overlaps a c);
  Alcotest.(check bool) "inter" true
    (Interval.equal (Interval.inter a b) (Interval.make 3 4));
  Alcotest.(check bool) "inter empty" true
    (Interval.is_empty (Interval.inter a c));
  Alcotest.(check bool) "hull" true
    (Interval.equal (Interval.hull a c) (Interval.make 0 9));
  Alcotest.(check int) "distance disjoint" 2 (Interval.distance a c);
  Alcotest.(check int) "distance overlap" 0 (Interval.distance a b);
  Alcotest.(check bool) "expand" true
    (Interval.equal (Interval.expand a 2) (Interval.make (-2) 6))

let interval_gen =
  QCheck.Gen.(
    let* a = int_range (-100) 100 in
    let* b = int_range (-100) 100 in
    return (Interval.of_endpoints a b))

let arbitrary_interval =
  QCheck.make
    ~print:(fun i -> Format.asprintf "%a" Interval.pp i)
    interval_gen

let prop_interval_inter_subset =
  QCheck.Test.make ~name:"intersection is contained in both intervals" ~count:200
    (QCheck.pair arbitrary_interval arbitrary_interval)
    (fun (a, b) ->
      let i = Interval.inter a b in
      Interval.is_empty i
      || (Interval.contains a i.Interval.lo && Interval.contains a i.Interval.hi
         && Interval.contains b i.Interval.lo && Interval.contains b i.Interval.hi))

let prop_interval_hull_superset =
  QCheck.Test.make ~name:"hull contains both intervals" ~count:200
    (QCheck.pair arbitrary_interval arbitrary_interval)
    (fun (a, b) ->
      let h = Interval.hull a b in
      Interval.contains h a.Interval.lo && Interval.contains h a.Interval.hi
      && Interval.contains h b.Interval.lo && Interval.contains h b.Interval.hi)

let prop_interval_distance_symmetric =
  QCheck.Test.make ~name:"interval distance is symmetric" ~count:200
    (QCheck.pair arbitrary_interval arbitrary_interval)
    (fun (a, b) -> Interval.distance a b = Interval.distance b a)

(* ------------------------------------------------------------------ *)
(* Rect                                                                *)
(* ------------------------------------------------------------------ *)

let test_rect_basics () =
  let r = Rect.make ~xlo:0 ~ylo:0 ~xhi:10 ~yhi:4 in
  Alcotest.(check int) "width" 10 (Rect.width r);
  Alcotest.(check int) "height" 4 (Rect.height r);
  Alcotest.(check int) "area" 40 (Rect.area r);
  Alcotest.(check bool) "center" true (Point.equal (Rect.center r) (Point.make 5 2));
  Alcotest.(check bool) "contains point" true
    (Rect.contains_point r (Point.make 10 4));
  Alcotest.(check bool) "excludes point" false
    (Rect.contains_point r (Point.make 11 0))

let test_rect_relations () =
  let a = Rect.make ~xlo:0 ~ylo:0 ~xhi:4 ~yhi:4 in
  let b = Rect.make ~xlo:2 ~ylo:2 ~xhi:6 ~yhi:6 in
  let c = Rect.make ~xlo:10 ~ylo:10 ~xhi:12 ~yhi:12 in
  Alcotest.(check bool) "overlap" true (Rect.overlaps a b);
  Alcotest.(check bool) "disjoint" false (Rect.overlaps a c);
  (match Rect.inter a b with
  | Some i ->
    Alcotest.(check bool) "inter" true
      (Rect.equal i (Rect.make ~xlo:2 ~ylo:2 ~xhi:4 ~yhi:4))
  | None -> Alcotest.fail "expected intersection");
  Alcotest.(check bool) "no inter" true (Rect.inter a c = None);
  Alcotest.(check bool) "hull" true
    (Rect.equal (Rect.hull a c) (Rect.make ~xlo:0 ~ylo:0 ~xhi:12 ~yhi:12));
  Alcotest.(check bool) "contains" true
    (Rect.contains a (Rect.make ~xlo:1 ~ylo:1 ~xhi:2 ~yhi:2));
  Alcotest.(check bool) "not contains" false (Rect.contains a b)

let test_rect_distance () =
  let a = Rect.make ~xlo:0 ~ylo:0 ~xhi:2 ~yhi:2 in
  let right = Rect.make ~xlo:5 ~ylo:0 ~xhi:6 ~yhi:2 in
  let diag = Rect.make ~xlo:5 ~ylo:6 ~xhi:7 ~yhi:8 in
  Alcotest.(check int) "x gap" 3 (Rect.distance a right);
  Alcotest.(check int) "L1 gap" 7 (Rect.distance a diag);
  Alcotest.(check int) "overlapping" 0 (Rect.distance a a)

let test_rect_transform () =
  let r = Rect.make ~xlo:1 ~ylo:1 ~xhi:3 ~yhi:4 in
  Alcotest.(check bool) "translate" true
    (Rect.equal
       (Rect.translate r (Point.make 10 (-1)))
       (Rect.make ~xlo:11 ~ylo:0 ~xhi:13 ~yhi:3));
  Alcotest.(check bool) "expand" true
    (Rect.equal (Rect.expand r 1) (Rect.make ~xlo:0 ~ylo:0 ~xhi:4 ~yhi:5))

let rect_gen =
  QCheck.Gen.(
    let* p1 = point_gen in
    let* p2 = point_gen in
    return (Rect.of_corners p1 p2))

let arbitrary_rect =
  QCheck.make ~print:(fun r -> Format.asprintf "%a" Rect.pp r) rect_gen

let prop_rect_distance_symmetric =
  QCheck.Test.make ~name:"rect distance is symmetric" ~count:200
    (QCheck.pair arbitrary_rect arbitrary_rect)
    (fun (a, b) -> Rect.distance a b = Rect.distance b a)

let prop_rect_inter_commutes_with_overlap =
  QCheck.Test.make ~name:"inter is Some iff overlaps" ~count:200
    (QCheck.pair arbitrary_rect arbitrary_rect)
    (fun (a, b) -> Rect.overlaps a b = Option.is_some (Rect.inter a b))

let prop_rect_hull_contains =
  QCheck.Test.make ~name:"hull contains both rectangles" ~count:200
    (QCheck.pair arbitrary_rect arbitrary_rect)
    (fun (a, b) ->
      let h = Rect.hull a b in
      Rect.contains h a && Rect.contains h b)

let () =
  Alcotest.run "geom"
    [
      ( "point",
        [
          Alcotest.test_case "arithmetic" `Quick test_point_arith;
          Alcotest.test_case "compare is a total order" `Quick
            test_point_compare_total_order;
        ] );
      ( "interval",
        [
          Alcotest.test_case "basics" `Quick test_interval_basics;
          Alcotest.test_case "of_endpoints" `Quick test_interval_of_endpoints;
          Alcotest.test_case "set operations" `Quick test_interval_set_ops;
        ] );
      ( "rect",
        [
          Alcotest.test_case "basics" `Quick test_rect_basics;
          Alcotest.test_case "relations" `Quick test_rect_relations;
          Alcotest.test_case "distance" `Quick test_rect_distance;
          Alcotest.test_case "transforms" `Quick test_rect_transform;
        ] );
      ( "properties",
        [
          qtest prop_manhattan_triangle;
          qtest prop_chebyshev_le_manhattan;
          qtest prop_interval_inter_subset;
          qtest prop_interval_hull_superset;
          qtest prop_interval_distance_symmetric;
          qtest prop_rect_distance_symmetric;
          qtest prop_rect_inter_commutes_with_overlap;
          qtest prop_rect_hull_contains;
        ] );
    ]
