(* End-to-end tests of the command-line interface: each test drives the
   real binary through a temp directory, exactly as a user would. *)

let exe = Filename.concat (Filename.concat ".." "bin") "optrouter.exe"

let run_capture args =
  let out = Filename.temp_file "optrouter_cli" ".out" in
  let cmd = Printf.sprintf "%s %s > %s 2>&1" exe (String.concat " " args) out in
  let code = Sys.command cmd in
  let ic = open_in out in
  let n = in_channel_length ic in
  let text = really_input_string ic n in
  close_in ic;
  Sys.remove out;
  (code, text)

let contains text sub =
  let len_t = String.length text and len = String.length sub in
  let rec go i = i + len <= len_t && (String.sub text i len = sub || go (i + 1)) in
  go 0

let sample_clips =
  "clip cli-test\n\
   tech N28-12T\n\
   size 4 3 2\n\
   net a\n\
   pin s access 0,0\n\
   pin t access 3,2\n\
   endnet\n\
   net b\n\
   pin s access 3,0\n\
   pin t access 0,2\n\
   endnet\n\
   endclip\n"

let with_clips_file f =
  let path = Filename.temp_file "optrouter_cli" ".clips" in
  let oc = open_out path in
  output_string oc sample_clips;
  close_out oc;
  Fun.protect ~finally:(fun () -> Sys.remove path) (fun () -> f path)

let test_cli_exists () =
  Alcotest.(check bool) "binary built" true (Sys.file_exists exe)

let test_cli_help () =
  let code, text = run_capture [ "--help=plain" ] in
  Alcotest.(check int) "exit 0" 0 code;
  List.iter
    (fun sub -> Alcotest.(check bool) (sub ^ " listed") true (contains text sub))
    [ "route"; "sweep"; "gen"; "pincost"; "solve-lp" ]

let test_cli_route () =
  with_clips_file (fun path ->
      let code, text = run_capture [ "route"; "--rule"; "1"; path ] in
      Alcotest.(check int) "exit 0" 0 code;
      Alcotest.(check bool) "reports cost" true (contains text "cost=");
      Alcotest.(check bool) "names the clip" true (contains text "cli-test"))

let test_cli_route_out () =
  with_clips_file (fun path ->
      let base = Filename.temp_file "optrouter_cli" "" in
      let code, _ =
        run_capture [ "route"; "--rule"; "1"; "--route-out"; base; path ]
      in
      Alcotest.(check int) "exit 0" 0 code;
      let routed = base ^ ".0.route" in
      Alcotest.(check bool) "route file written" true (Sys.file_exists routed);
      let ic = open_in routed in
      let text = really_input_string ic (in_channel_length ic) in
      close_in ic;
      Sys.remove routed;
      Sys.remove base;
      Alcotest.(check bool) "route header" true (contains text "route cli-test"))

let test_cli_pincost () =
  with_clips_file (fun path ->
      let code, text = run_capture [ "pincost"; path ] in
      Alcotest.(check int) "exit 0" 0 code;
      Alcotest.(check bool) "has header" true (contains text "PEC"))

let test_cli_show () =
  with_clips_file (fun path ->
      let code, text = run_capture [ "show"; path ] in
      Alcotest.(check int) "exit 0" 0 code;
      Alcotest.(check bool) "renders grid" true (contains text "a"))

let test_cli_baseline () =
  with_clips_file (fun path ->
      let code, text = run_capture [ "baseline"; "--rule"; "1"; path ] in
      Alcotest.(check int) "exit 0" 0 code;
      Alcotest.(check bool) "reports heuristic cost" true
        (contains text "heuristic"))

let test_cli_cells () =
  let code, text = run_capture [ "cells"; "--tech"; "N7-9T" ] in
  Alcotest.(check int) "exit 0" 0 code;
  Alcotest.(check bool) "prints NAND2" true (contains text "NAND2X1")

let test_cli_solve_lp () =
  let path = Filename.temp_file "optrouter_cli" ".lp" in
  let oc = open_out path in
  output_string oc
    "Minimize\n\
    \  obj: 2 x + 3 y\n\
     Subject To\n\
    \  c: x + y >= 4\n\
     Bounds\n\
    \  0 <= x <= 10\n\
    \  0 <= y <= 10\n\
     End\n";
  close_out oc;
  let code, text = run_capture [ "solve-lp"; path ] in
  Sys.remove path;
  Alcotest.(check int) "exit 0" 0 code;
  Alcotest.(check bool) "optimal 8 at x=4" true
    (contains text "optimal: 8" && contains text "x = 4")

let test_cli_global () =
  let code, text =
    run_capture [ "global"; "--tech"; "N28-8T"; "--scale"; "0.01" ]
  in
  Alcotest.(check int) "exit 0" 0 code;
  Alcotest.(check bool) "prints congestion" true (contains text "gcells")

let test_cli_rejects_bad_input () =
  let path = Filename.temp_file "optrouter_cli" ".clips" in
  let oc = open_out path in
  output_string oc "clip broken\nendclip\n";
  close_out oc;
  let code, _ = run_capture [ "route"; path ] in
  Sys.remove path;
  Alcotest.(check bool) "nonzero exit" true (code <> 0)

let () =
  Alcotest.run "cli"
    [
      ( "cli",
        [
          Alcotest.test_case "binary exists" `Quick test_cli_exists;
          Alcotest.test_case "help lists subcommands" `Quick test_cli_help;
          Alcotest.test_case "route" `Quick test_cli_route;
          Alcotest.test_case "route --route-out" `Quick test_cli_route_out;
          Alcotest.test_case "pincost" `Quick test_cli_pincost;
          Alcotest.test_case "show" `Quick test_cli_show;
          Alcotest.test_case "baseline" `Quick test_cli_baseline;
          Alcotest.test_case "cells" `Quick test_cli_cells;
          Alcotest.test_case "solve-lp" `Quick test_cli_solve_lp;
          Alcotest.test_case "global congestion" `Quick test_cli_global;
          Alcotest.test_case "bad input rejected" `Quick
            test_cli_rejects_bad_input;
        ] );
    ]
