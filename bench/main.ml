(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation section, at a scale the pure-OCaml MILP solver handles in
   minutes (see DESIGN.md / EXPERIMENTS.md for the scale mapping).

   Usage: main.exe [-j N] [--solver-jobs N] [--no-reuse] [SECTION...]
   Sections: table2 table3 fig7 fig8 fig9 fig10a fig10b fig10c audit
             ilpsize validate runtime ablation micro solver (default: all)

   [-j N] fans the independent ILP solves of the sweep sections (fig10*,
   validate) over N domains; the reported tables and figures are
   byte-identical to a serial run.

   [--solver-jobs N] additionally lets each branch-and-bound search run
   on up to N worker domains (two-level scheduling: under -j, solves only
   widen while pool domains are idle). Proved optima are identical; only
   node counts and times change.

   [--no-reuse] disables the baseline-reuse layer of the sweep sections:
   every (clip, rule) ILP re-solves from scratch instead of re-checking /
   re-encoding the RULE1 baseline routing. Entries are identical either
   way; use it to measure what reuse saves (see results/BENCH_sweep.json).

   Environment knobs:
     OPTROUTER_JOBS         default for -j (default 1 = serial)
     OPTROUTER_SOLVER_JOBS  default for --solver-jobs (default 1 = serial)
     OPTROUTER_PROGRESS     when set, trace each (clip, rule) solve on stderr
     OPTROUTER_BENCH_CLIPS  top-k clips per technology (default 6)
     OPTROUTER_BENCH_TIME   wall-clock seconds limit per ILP solve (default 15)
     OPTROUTER_BENCH_SCALE  instance-count scale factor (default 0.03) *)

module Tech = Optrouter_tech.Tech
module Rules = Optrouter_tech.Rules
module Via_shape = Optrouter_tech.Via_shape
module Clip = Optrouter_grid.Clip
module Graph = Optrouter_grid.Graph
module Cells = Optrouter_cells.Cells
module Design = Optrouter_design.Design
module Extract = Optrouter_clips.Extract
module Pin_cost = Optrouter_clips.Pin_cost
module Formulate = Optrouter_core.Formulate
module Optrouter = Optrouter_core.Optrouter
module Route = Optrouter_grid.Route
module Maze = Optrouter_maze.Maze
module Sweep = Optrouter_eval.Sweep
module Scoreboard = Optrouter_eval.Scoreboard
module Experiments = Optrouter_eval.Experiments
module Report = Optrouter_report.Report
module Lp = Optrouter_ilp.Lp
module Simplex = Optrouter_ilp.Simplex
module Milp = Optrouter_ilp.Milp
module Presolve = Optrouter_ilp.Presolve
module Lagrangian = Optrouter_lagrangian.Lagrangian
module Pool = Optrouter_exec.Pool
module Lp_audit = Optrouter_analysis.Lp_audit
module Clipfile = Optrouter_clipfile.Clipfile
module Serve = Optrouter_serve.Serve

let env_int name default =
  match Sys.getenv_opt name with
  | Some v -> ( match int_of_string_opt v with Some i -> i | None -> default)
  | None -> default

let env_float name default =
  match Sys.getenv_opt name with
  | Some v -> ( match float_of_string_opt v with Some f -> f | None -> default)
  | None -> default

(* Sweep objective for the fig10 sections (and their CSVs / telemetry
   dump): the paper's combined cost unless OPTROUTER_BENCH_OBJECTIVE
   picks a via profile. An unparseable value aborts rather than silently
   benchmarking the wrong objective. *)
let bench_objective =
  match Sys.getenv_opt "OPTROUTER_BENCH_OBJECTIVE" with
  | None -> Rules.Wirelength
  | Some s -> (
    match Rules.objective_of_name (String.lowercase_ascii s) with
    | Ok o -> o
    | Error msg ->
      Printf.eprintf "error: OPTROUTER_BENCH_OBJECTIVE: %s\n" msg;
      exit 2)

let bench_params =
  {
    Experiments.default_fig10_params with
    Experiments.top_clips = env_int "OPTROUTER_BENCH_CLIPS" 6;
    time_limit_s = env_float "OPTROUTER_BENCH_TIME" 15.0;
    instance_scale = env_float "OPTROUTER_BENCH_SCALE" 0.03;
    objective = bench_objective;
  }

(* The domain pool shared by the sweep sections; set up once in [main]
   from [-j]/[OPTROUTER_JOBS]. [None] means serial. *)
let pool : Pool.t option ref = ref None

(* Baseline reuse in the sweep sections; cleared by [--no-reuse]. *)
let reuse = ref true

(* Solver telemetry accumulated across every sweep section of the run,
   dumped as results/BENCH_sweep.json so CI can track the perf
   trajectory (solves, fast-path hits, nodes, busy vs wall seconds). *)
let sweep_telemetry = ref Sweep.empty_telemetry
let sweep_sections_run = ref 0

(* [Sweep.merge_telemetry] merges wall fields with [max] (shards are
   assumed concurrent), but bench sections run back to back — their
   elapsed times add. Keep the sequential total separately. *)
let sweep_sections_wall_s = ref 0.0

let jobs_used = ref 1

(* Per-solve branch-and-bound width for the sweep sections; set up in
   [main] from [--solver-jobs]/[OPTROUTER_SOLVER_JOBS]. *)
let solver_jobs = ref 1

let progress_enabled = Sys.getenv_opt "OPTROUTER_PROGRESS" <> None

(* Progress lines ride the sweep's [on_entry] callback: it fires in this
   (collecting) domain once per completed (clip, rule) solve, so printing
   needs no synchronisation even at -j 8. *)
let on_entry =
  if not progress_enabled then None
  else
    Some
      (fun (e : Sweep.entry) ->
        Printf.eprintf "[sweep] %s %s: %s\n%!" e.Sweep.clip_name
          e.Sweep.rule_name
          (match (e.Sweep.delta, e.Sweep.cost) with
          | Sweep.Delta d, Some c -> Printf.sprintf "cost %d (dcost %d)" c d
          | Sweep.Infeasible, _ -> "unroutable"
          | Sweep.Limit, Some c -> Printf.sprintf "limit (incumbent %d)" c
          | (Sweep.Delta _ | Sweep.Limit), None -> "limit"))

let results_dir = "results"

let ensure_results_dir () =
  if not (Sys.file_exists results_dir) then Sys.mkdir results_dir 0o755

let write_sweep_json () =
  ensure_results_dir ();
  let t = !sweep_telemetry in
  let path = Filename.concat results_dir "BENCH_sweep.json" in
  Report.Json.write_file path
    (Report.Json.Obj
       [
         ("sections", Report.Json.Int !sweep_sections_run);
         ("objective", Report.Json.String (Rules.objective_name bench_objective));
         ("jobs", Report.Json.Int !jobs_used);
         ("solver_jobs", Report.Json.Int !solver_jobs);
         ("reuse", Report.Json.Bool !reuse);
         ("solves", Report.Json.Int t.Sweep.solves);
         ("fast_path_hits", Report.Json.Int t.Sweep.fast_path_hits);
         ("seeded_incumbents", Report.Json.Int t.Sweep.seeded_incumbents);
         ("nodes", Report.Json.Int t.Sweep.nodes);
         ("simplex_iterations", Report.Json.Int t.Sweep.simplex_iterations);
         ("busy_s", Report.Json.Float t.Sweep.busy_s);
         (* wall_s: widest single section (merge is by max); the
            sequential total elapsed across sections is separate. *)
         ("wall_s", Report.Json.Float t.Sweep.wall_s);
         ("sections_wall_s", Report.Json.Float !sweep_sections_wall_s);
         ("limits", Report.Json.Int t.Sweep.limits);
         ("infeasible", Report.Json.Int t.Sweep.infeasible);
         ("failures", Report.Json.Int t.Sweep.failures);
         ("steals", Report.Json.Int t.Sweep.steals);
         ("solver_busy_s", Report.Json.Float t.Sweep.solver_busy_s);
         ("solver_wall_s", Report.Json.Float t.Sweep.solver_wall_s);
         ("peak_workers", Report.Json.Int t.Sweep.peak_workers);
       ]);
  Printf.printf "[sweep telemetry written to %s]\n%!" path

let banner title =
  Printf.printf "\n================ %s ================\n" title

let section_table2 () =
  banner "Table 2: benchmark designs";
  print_string
    (Report.Table.render ~header:Experiments.table2_header
       (Experiments.table2_rows ()))

let section_table3 () =
  banner "Table 3: BEOL design rule configurations";
  print_string
    (Report.Table.render ~header:Experiments.table3_header
       (Experiments.table3_rows ()))

let render_clip (c : Clip.t) =
  let buf = Buffer.create 128 in
  Buffer.add_string buf
    (Printf.sprintf "%s [%s] (M2 access points)\n" c.Clip.c_name c.Clip.tech_name);
  let grid = Array.make_matrix c.Clip.rows c.Clip.cols '.' in
  List.iteri
    (fun k (net : Clip.net) ->
      let ch = Char.chr (Char.code 'a' + (k mod 26)) in
      List.iter
        (fun (pin : Clip.pin) ->
          List.iter (fun (x, y) -> grid.(y).(x) <- ch) pin.Clip.access)
        net.Clip.pins)
    c.Clip.nets;
  for y = c.Clip.rows - 1 downto 0 do
    for x = 0 to c.Clip.cols - 1 do
      Buffer.add_char buf grid.(y).(x);
      Buffer.add_char buf ' '
    done;
    Buffer.add_char buf '\n'
  done;
  Buffer.contents buf

let section_fig7 () =
  banner "Figure 7: routing clips extracted per technology";
  List.iter
    (fun tech ->
      match
        Experiments.difficult_clips
          ~params:{ bench_params with Experiments.top_clips = 1 }
          tech
      with
      | clip :: _ -> print_string (render_clip clip)
      | [] -> Printf.printf "(no clip extracted for %s)\n" tech.Tech.name)
    Tech.all

let section_fig8 () =
  banner "Figure 8: pin cost distributions (N7-9T, AES and M0)";
  let series = Experiments.fig8 () in
  let rows =
    List.map
      (fun (s : Experiments.fig8_series) ->
        let n = Array.length s.Experiments.top_costs in
        let v i = s.Experiments.top_costs.(min i (max 0 (n - 1))) in
        [
          s.Experiments.label;
          string_of_int n;
          Printf.sprintf "%.1f" (v (n - 1));
          Printf.sprintf "%.1f" (v (n / 2));
          Printf.sprintf "%.1f" (v 0);
        ])
      series
  in
  print_string
    (Report.Table.render
       ~header:[ "version"; "#top clips"; "min"; "median"; "max" ]
       rows);
  print_string
    (Report.Series.plot ~y_label:"top pin costs (sorted descending)"
       (List.map
          (fun (s : Experiments.fig8_series) ->
            (s.Experiments.label, s.Experiments.top_costs))
          series));
  Printf.printf "paper-claim scoreboard:\n";
  Format.printf "%a" Scoreboard.pp_findings (Scoreboard.fig8_findings series);
  ensure_results_dir ();
  Report.Csv.write_file
    (Filename.concat results_dir "fig8.csv")
    ~header:[ "version"; "rank"; "pin_cost" ]
    (List.concat_map
       (fun (s : Experiments.fig8_series) ->
         Array.to_list
           (Array.mapi
              (fun i c ->
                [ s.Experiments.label; string_of_int i; Printf.sprintf "%.3f" c ])
              s.Experiments.top_costs))
       series)

let section_fig9 () =
  banner "Figure 9: NAND2X1 pin shapes per technology";
  List.iter
    (fun tech -> print_endline (Cells.render tech (Cells.nand2 tech)))
    Tech.all

let fig10_for name tech =
  banner
    (Printf.sprintf "Figure 10%s: dcost per rule, %s (reduced scale%s)" name
       tech.Tech.name
       (match bench_objective with
       | Rules.Wirelength -> ""
       | o -> ", objective " ^ Rules.objective_name o));
  let telemetry = ref Sweep.empty_telemetry in
  let params =
    { bench_params with Experiments.reuse = !reuse; solver_jobs = !solver_jobs }
  in
  let entries =
    Experiments.fig10 ~params ?pool:!pool ~telemetry ?on_entry tech
  in
  incr sweep_sections_run;
  sweep_telemetry := Sweep.merge_telemetry !sweep_telemetry !telemetry;
  sweep_sections_wall_s := !sweep_sections_wall_s +. !telemetry.Sweep.wall_s;
  if entries = [] then print_endline "(no routable clips at this scale)"
  else begin
    let series = Sweep.series entries in
    print_string
      (Report.Series.plot ~y_label:"sorted dcost (500 = unroutable)" series);
    let counts = Sweep.infeasible_counts entries in
    let rows =
      List.map
        (fun (rule, n) ->
          let values = List.assoc rule series in
          let finite = Array.to_list values |> List.filter (fun v -> v < 499.0) in
          let solved = List.length finite in
          let mean =
            match finite with
            | [] -> "-"
            | _ ->
              Printf.sprintf "%.1f"
                (List.fold_left ( +. ) 0.0 finite /. float_of_int solved)
          in
          [
            rule;
            string_of_int (Array.length values);
            string_of_int solved;
            mean;
            string_of_int n;
          ])
        counts
    in
    print_string
      (Report.Table.render
         ~header:
           [ "rule"; "#clips"; "#solved"; "mean dcost (solved)"; "#infeasible" ]
         rows);
    Printf.printf "paper-claim scoreboard:\n";
    Format.printf "%a" Scoreboard.pp_findings (Scoreboard.fig10_findings entries);
    ensure_results_dir ();
    Report.Csv.write_file
      (Filename.concat results_dir (Printf.sprintf "fig10%s.csv" name))
      ~header:[ "clip"; "rule"; "objective"; "base_cost"; "cost"; "dcost" ]
      (List.map
         (fun (e : Sweep.entry) ->
           [
             e.Sweep.clip_name;
             e.Sweep.rule_name;
             Rules.objective_name bench_objective;
             string_of_int e.Sweep.base_cost;
             (match e.Sweep.cost with Some c -> string_of_int c | None -> "");
             Printf.sprintf "%.0f" (Sweep.delta_value e.Sweep.delta);
           ])
         entries)
  end;
  print_string (Sweep.render_telemetry !telemetry)

let section_ilpsize () =
  banner "Section 4.2: ILP variable/constraint counts";
  print_string
    (Report.Table.render ~header:Experiments.ilp_size_header
       (Experiments.ilp_size_rows ()))

let section_validate () =
  banner "Footnote 6: OptRouter vs heuristic baseline (RULE1)";
  let rows = ref [] in
  let deltas = ref [] in
  List.iter
    (fun tech ->
      let params = { bench_params with Experiments.top_clips = 3 } in
      List.iter
        (fun (v : Experiments.validation) ->
          let delta =
            match (v.Experiments.opt_cost, v.Experiments.baseline_cost) with
            | Some o, Some b ->
              deltas := float_of_int (o - b) :: !deltas;
              string_of_int (o - b)
            | _, _ -> "-"
          in
          rows :=
            [
              tech.Tech.name;
              v.Experiments.v_clip;
              (match v.Experiments.opt_cost with
              | Some c -> string_of_int c
              | None -> "-");
              (match v.Experiments.baseline_cost with
              | Some c -> string_of_int c
              | None -> "-");
              delta;
            ]
            :: !rows)
        (Experiments.validate ~params ?pool:!pool tech))
    Tech.all;
  print_string
    (Report.Table.render
       ~header:[ "tech"; "clip"; "OptRouter"; "baseline"; "dcost" ]
       (List.rev !rows));
  match !deltas with
  | [] -> ()
  | ds ->
    let mean = List.fold_left ( +. ) 0.0 ds /. float_of_int (List.length ds) in
    Printf.printf
      "average dcost (OptRouter - baseline): %.1f (paper reports -10..-15 on \
       an average cost of ~380)\n"
      mean

let section_runtime () =
  banner "Section 5: OptRouter runtime per switchbox";
  let rows =
    List.map
      (fun (label, without_rules, with_rules) ->
        [
          label;
          Printf.sprintf "%.2f s" without_rules;
          Printf.sprintf "%.2f s" with_rules;
        ])
      (Experiments.runtime ~params:bench_params ())
  in
  print_string
    (Report.Table.render
       ~header:[ "switchbox size"; "no SADP/via rules"; "SADP + via rules" ]
       rows)

let section_ablation () =
  banner "Ablation: via cost weight (routing cost = WL + w * #vias)";
  let clip =
    match
      Experiments.difficult_clips
        ~params:{ bench_params with Experiments.top_clips = 1 }
        Tech.n28_12t
    with
    | c :: _ -> c
    | [] -> failwith "no clip"
  in
  let rows =
    List.map
      (fun w ->
        let tech = { Tech.n28_12t with Tech.via_weight = w } in
        match
          (Optrouter.route ~tech ~rules:(Rules.rule 1) clip).Optrouter.verdict
        with
        | Optrouter.Routed sol ->
          [
            string_of_int w;
            string_of_int sol.Route.metrics.wirelength;
            string_of_int sol.Route.metrics.vias;
            string_of_int sol.Route.metrics.cost;
          ]
        | Optrouter.Unroutable | Optrouter.Limit _ | Optrouter.Near_optimal _ ->
          [ string_of_int w; "-"; "-"; "-" ])
      [ 1; 2; 4; 8 ]
  in
  print_string
    (Report.Table.render ~header:[ "via weight"; "WL"; "#vias"; "cost" ] rows);
  banner "Ablation: SADP linearisation (collapsed vs paper aux binaries)";
  let g = Graph.build ~tech:Tech.n28_12t ~rules:(Rules.rule 2) clip in
  let time f =
    let t0 = Sys.time () in
    let r = f () in
    (r, Sys.time () -. t0)
  in
  let run options =
    time (fun () ->
        let config = Optrouter.make_config ~options () in
        Optrouter.route_graph ~config ~rules:(Rules.rule 2) g)
  in
  let collapsed, t_collapsed = run Formulate.default_options in
  let aux, t_aux =
    run { Formulate.default_options with Formulate.sadp_aux_vars = true }
  in
  let cost r =
    match Optrouter.cost_of r with Some c -> string_of_int c | None -> "-"
  in
  print_string
    (Report.Table.render
       ~header:[ "linearisation"; "cost"; "CPU s" ]
       [
         [ "collapsed (default)"; cost collapsed; Printf.sprintf "%.2f" t_collapsed ];
         [ "paper (9) aux vars"; cost aux; Printf.sprintf "%.2f" t_aux ];
       ]);
  banner "Ablation: unidirectional vs bidirectional layers";
  (* The paper fixes all layers unidirectional ('used because of better
     robustness, scalability and manufacturability'); this quantifies what
     that choice costs on the representative clip. *)
  let rep = Experiments.representative_clip in
  let route_dir bidirectional =
    let config = Optrouter.make_config ~bidirectional () in
    match
      (Optrouter.route ~config ~tech:Tech.n28_12t ~rules:(Rules.rule 1) rep)
        .Optrouter.verdict
    with
    | Optrouter.Routed sol ->
      [
        (if bidirectional then "bidirectional (LELE luxury)"
         else "unidirectional (paper)");
        string_of_int sol.Route.metrics.wirelength;
        string_of_int sol.Route.metrics.vias;
        string_of_int sol.Route.metrics.cost;
      ]
    | Optrouter.Unroutable | Optrouter.Limit _ | Optrouter.Near_optimal _ ->
      [ (if bidirectional then "bidirectional" else "unidirectional"); "-"; "-"; "-" ]
  in
  print_string
    (Report.Table.render
       ~header:[ "layer directionality"; "WL"; "#vias"; "cost" ]
       [ route_dir false; route_dir true ])

(* Bechamel micro-benchmarks of the computational kernels: one Test.make
   per kernel, measured under a short time quota so the harness stays
   fast. *)
let section_micro () =
  banner "Microbenchmarks (bechamel)";
  let open Bechamel in
  let clip = Experiments.representative_clip in
  let tech = Tech.n28_12t in
  let g1 = Graph.build ~tech ~rules:(Rules.rule 1) clip in
  let form1 = Formulate.build ~rules:(Rules.rule 1) g1 in
  let lp1 = Formulate.lp form1 in
  let test_graph =
    Test.make ~name:"graph build (5x5x4, 4 nets)"
      (Staged.stage (fun () -> Graph.build ~tech ~rules:(Rules.rule 2) clip))
  in
  let test_formulate =
    Test.make ~name:"ILP formulation (RULE2)"
      (Staged.stage (fun () -> Formulate.build ~rules:(Rules.rule 2) g1))
  in
  let test_lp =
    Test.make ~name:"LP relaxation (simplex)"
      (Staged.stage (fun () -> Simplex.solve lp1))
  in
  let test_pincost =
    Test.make ~name:"pin cost metric"
      (Staged.stage (fun () -> Pin_cost.total clip))
  in
  let test_maze =
    Test.make ~name:"heuristic maze route (RULE1)"
      (Staged.stage (fun () ->
           Maze.route
             ~params:{ Maze.default_params with Maze.restarts = 2 }
             ~rules:(Rules.rule 1) g1))
  in
  let tests =
    Test.make_grouped ~name:"optrouter"
      [ test_graph; test_formulate; test_lp; test_pincost; test_maze ]
  in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:100 ~quota:(Time.second 0.5) () in
  let raw = Benchmark.all cfg instances tests in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  Hashtbl.iter
    (fun name result ->
      match Analyze.OLS.estimates result with
      | Some [ est ] -> Printf.printf "%-42s %14.0f ns/run\n" name est
      | Some _ | None -> Printf.printf "%-42s (no estimate)\n" name)
    results

(* Solver microbenchmark: serial vs parallel branch and bound on the
   hardest bundled clip of each technology that the serial solver can
   prove within the time budget — a clip whose root relaxation alone
   eats the budget has no search tree to parallelise and would only
   measure the time limit. The chosen MILP is re-solved from scratch —
   no incumbent seed, no heuristic warm start — at widths 1, 2 and 4.
   Proved optima must agree across widths (the solver's determinism
   contract); a disagreement fails the run. *)
let section_solver () =
  banner "solver: serial vs parallel branch and bound";
  let widths = [ 1; 2; 4 ] in
  let cores = Domain.recommended_domain_count () in
  let time_limit = env_float "OPTROUTER_BENCH_TIME" 15.0 in
  let rows = ref [] in
  let per_tech = ref [] in
  let mismatches = ref 0 in
  let serial_nodes = ref [] in
  (* Root-LP study accumulators: per-mode relaxation solves on a hoisted
     Simplex.Instance (one per (clip, rule) LP — instance build time is
     reported separately, never folded into a solve wall). *)
  let root_rows = ref [] in
  let root_json = ref [] in
  let dantzig_total = ref 0.0 in
  let warm_total = ref 0.0 in
  (* Per-mode wall budget for the root-LP study: a full-pricing root solve
     on a hard clip can grind for minutes, which is itself the result —
     record it as a budget hit instead of letting the study run unbounded.
     The default must clear the slowest devex cold solve comfortably or
     the whole tech drops out of the comparison. *)
  let root_budget =
    env_float "OPTROUTER_BENCH_ROOT_BUDGET" (Float.min 10.0 time_limit)
  in
  let outcome_name = function
    | Milp.Proved_optimal -> "optimal"
    | Milp.Feasible -> "feasible"
    | Milp.Infeasible -> "infeasible"
    | Milp.Unbounded -> "unbounded"
    | Milp.Unknown -> "unknown"
  in
  let solve_width lp jobs =
    let params =
      Milp.make_params ~max_nodes:500_000 ~time_limit_s:time_limit
        ~solver_jobs:jobs ()
    in
    Milp.solve ~params lp
  in
  (* Root-relaxation pricing/warm-start study on [clip]: RULE1 plus the
     first few applicable rules, each LP prepared once
     (Simplex.Instance.create, timed separately) and root-solved under
     full Dantzig pricing, cold devex, and — for RULEk — devex warm-started
     from the RULE1 optimal basis remapped by name. Every Optimal result
     must pass the independent certificate check and match the Dantzig
     objective; the combined speedup (all-Dantzig vs devex+warm) is the
     headline root_lp number. *)
  let root_lp_study tech clip =
    let wall f =
      (* fast solves get min-of-3 (a single microsecond-scale timing is
         scheduler noise); slow ones keep their single measurement *)
      let t0 = Unix.gettimeofday () in
      let r = f () in
      let dt = ref (Unix.gettimeofday () -. t0) in
      if !dt < 0.2 then
        for _ = 2 to 3 do
          let t0 = Unix.gettimeofday () in
          ignore (f ());
          let d = Unix.gettimeofday () -. t0 in
          if d < !dt then dt := d
        done;
      (r, !dt)
    in
    let run_mode inst lp name params =
      let deadline = Unix.gettimeofday () +. root_budget in
      let params = { params with Simplex.Params.deadline_s = Some deadline } in
      match wall (fun () -> Simplex.Instance.solve ~params inst) with
      | r, w ->
        let verified =
          r.Simplex.status = Simplex.Optimal
          && Simplex.verify_optimal lp r = Ok ()
        in
        Some (name, r, w, verified)
      | exception Simplex.Numerical_failure _ ->
        (* deadline or iteration budget exhausted: a legitimate study
           outcome for the slow mode, not a bench failure *)
        Printf.printf "root-LP budget hit: %s %s %s (%.1f s)\n"
          tech.Tech.name clip.Clip.c_name name root_budget;
        None
    in
    let study_rules =
      Rules.rule 1
      :: (Experiments.rules_for tech |> List.filteri (fun i _ -> i < 4))
    in
    let rule1_assoc = ref None in
    (* Set once the RULE1 entry fails to yield a reusable basis: without
       it every remaining rule would charge the full budget to both
       campaign sides (there is nothing to warm-start), measuring only
       the budget itself. Such entries are skipped and logged. *)
    let no_basis = ref false in
    let entries =
      List.filter_map
        (fun (r : Rules.t) ->
          if !no_basis then None
          else begin
          let g = Graph.build ~tech ~rules:r clip in
          let lp = Formulate.lp (Formulate.build ~rules:r g) in
          let inst, build_s = wall (fun () -> Simplex.Instance.create lp) in
          let dantzig =
            run_mode inst lp "dantzig"
              (Simplex.make_params ~pricing:Simplex.Dantzig ())
          in
          let devex_cold =
            run_mode inst lp "devex"
              (Simplex.make_params ~pricing:Simplex.Devex ())
          in
          let devex_warm =
            match !rule1_assoc with
            | None -> None
            | Some assoc ->
              let basis, _fixup = Simplex.Basis.of_assoc lp assoc in
              run_mode inst lp "devex+warm"
                (Simplex.make_params ~basis ~pricing:Simplex.Devex ())
          in
          (match (r.Rules.name, devex_cold) with
          | "RULE1", Some (_, res, _, _) when res.Simplex.status = Simplex.Optimal
            ->
            rule1_assoc := Some (Simplex.Basis.to_assoc lp res.Simplex.basis)
          | "RULE1", _ ->
            no_basis := true;
            Printf.printf
              "root-LP study: %s %s RULE1 root unsolved within budget; \
               skipping RULEk warm-start entries\n"
              tech.Tech.name clip.Clip.c_name
          | _ -> ());
          (* The reference objective every other mode must reproduce. *)
          let ref_obj =
            match dantzig with
            | Some (_, res, _, _) when res.Simplex.status = Simplex.Optimal ->
              Some res.Simplex.objective
            | Some _ | None -> None
          in
          let modes = List.filter_map Fun.id [ dantzig; devex_cold; devex_warm ] in
          let mode_json (name, (res : Simplex.result), w, verified) =
            let identical =
              match ref_obj with
              | Some o when res.Simplex.status = Simplex.Optimal ->
                Float.abs (res.Simplex.objective -. o) <= 1e-9
              | Some _ | None -> true
            in
            if not identical then begin
              incr mismatches;
              Printf.printf
                "ROOT-LP MISMATCH: %s %s %s proved %g, dantzig proved %g\n"
                clip.Clip.c_name r.Rules.name name res.Simplex.objective
                (Option.value ref_obj ~default:Float.nan)
            end;
            if res.Simplex.status = Simplex.Optimal && not verified then begin
              incr mismatches;
              Printf.printf "ROOT-LP UNVERIFIED: %s %s %s\n" clip.Clip.c_name
                r.Rules.name name
            end;
            root_rows :=
              [
                tech.Tech.name;
                r.Rules.name;
                name;
                string_of_int res.Simplex.iterations;
                string_of_int res.Simplex.bound_flips;
                (match res.Simplex.warm with
                | `Cold -> "cold"
                | `Reused -> "reused"
                | `Repaired -> "repaired");
                Printf.sprintf "%.3f" (w *. 1e3);
                Printf.sprintf "%g" res.Simplex.objective;
                (if verified then "yes" else "-");
              ]
              :: !root_rows;
            ( name,
              Report.Json.Obj
                [
                  ("iterations", Report.Json.Int res.Simplex.iterations);
                  ("bound_flips", Report.Json.Int res.Simplex.bound_flips);
                  ( "warm",
                    Report.Json.String
                      (match res.Simplex.warm with
                      | `Cold -> "cold"
                      | `Reused -> "reused"
                      | `Repaired -> "repaired") );
                  ("wall_s", Report.Json.Float w);
                  ("objective", Report.Json.Float res.Simplex.objective);
                  ("verified", Report.Json.Bool verified);
                  ("objective_identical", Report.Json.Bool identical);
                ] )
          in
          let mode_fields = List.map mode_json modes in
          (* Combined-campaign accounting: the old regime prices every
             root LP with full Dantzig scans; the new one solves RULE1
             cold under devex and every RULEk from the remapped basis. *)
          (match dantzig with
          | Some (_, _, w, _) -> dantzig_total := !dantzig_total +. w
          | None ->
            (* budget hit: count the budget itself, a lower bound on what
               the mode would have cost *)
            dantzig_total := !dantzig_total +. root_budget);
          (match (devex_warm, devex_cold) with
          | Some (_, _, w, _), _ | None, Some (_, _, w, _) ->
            warm_total := !warm_total +. w
          | None, None -> warm_total := !warm_total +. root_budget);
          Some
            (Report.Json.Obj
               (("rule", Report.Json.String r.Rules.name)
               :: ("build_s", Report.Json.Float build_s)
               :: mode_fields))
          end)
        study_rules
    in
    root_json :=
      ( tech.Tech.name,
        Report.Json.Obj
          [
            ("clip", Report.Json.String clip.Clip.c_name);
            ("rules", Report.Json.List entries);
          ] )
      :: !root_json
  in
  List.iter
    (fun tech ->
      let clips =
        Experiments.difficult_clips
          ~params:{ bench_params with Experiments.top_clips = 4 }
          tech
      in
      (* Hardest first: the first clip the serial solver proves within
         the budget is the benchmark instance; its serial run is reused
         as the width-1 measurement. *)
      let rec pick = function
        | [] -> None
        | clip :: rest -> (
          let rules = Rules.rule 1 in
          let g = Graph.build ~tech ~rules clip in
          let lp = Formulate.lp (Formulate.build ~rules g) in
          let r = solve_width lp 1 in
          match r.Milp.outcome with
          | Milp.Proved_optimal -> Some (clip, lp, r)
          | _ -> if rest = [] then Some (clip, lp, r) else pick rest)
      in
      match pick clips with
      | None -> Printf.printf "(no clip extracted for %s)\n" tech.Tech.name
      | Some (clip, lp, serial_run) ->
        serial_nodes := serial_run.Milp.nodes :: !serial_nodes;
        (* Presolve reductions on the benchmark LP: before/after sizes
           and per-reduction counts, so the JSON tracks how much of the
           model the substitution/domination passes shed over time. *)
        let presolve_json =
          match Presolve.presolve lp with
          | Presolve.Reduced (_, m) ->
            let s = Presolve.stats m in
            Printf.printf
              "presolve %s: rows %d -> %d, cols %d -> %d (%d singleton \
               col(s), %d dominated row(s), %d pass(es))\n"
              clip.Clip.c_name s.Presolve.rows_before s.Presolve.rows_after
              s.Presolve.cols_before s.Presolve.cols_after
              s.Presolve.singleton_cols s.Presolve.dominated_rows
              s.Presolve.passes;
            Report.Json.Obj
              [
                ("rows_before", Report.Json.Int s.Presolve.rows_before);
                ("rows_after", Report.Json.Int s.Presolve.rows_after);
                ("cols_before", Report.Json.Int s.Presolve.cols_before);
                ("cols_after", Report.Json.Int s.Presolve.cols_after);
                ("singleton_cols", Report.Json.Int s.Presolve.singleton_cols);
                ("dominated_rows", Report.Json.Int s.Presolve.dominated_rows);
                ("passes", Report.Json.Int s.Presolve.passes);
              ]
          | Presolve.Infeasible why ->
            Report.Json.Obj [ ("infeasible", Report.Json.String why) ]
        in
        let serial = ref None in
        let runs =
          List.map
            (fun jobs ->
              let r = if jobs = 1 then serial_run else solve_width lp jobs in
              (match (!serial, r.Milp.outcome) with
              | None, _ -> serial := Some r
              | Some s, Milp.Proved_optimal
                when s.Milp.outcome = Milp.Proved_optimal
                     && Float.abs (s.Milp.objective -. r.Milp.objective)
                        > 1e-6 ->
                incr mismatches;
                Printf.printf
                  "MISMATCH: %s at %d workers proved %g, serial proved %g\n"
                  clip.Clip.c_name jobs r.Milp.objective s.Milp.objective
              | Some _, _ -> ());
              let speedup =
                match !serial with
                | Some s when r.Milp.solver_wall_s > 0.0 ->
                  s.Milp.solver_wall_s /. r.Milp.solver_wall_s
                | Some _ | None -> 0.0
              in
              rows :=
                [
                  tech.Tech.name;
                  clip.Clip.c_name;
                  string_of_int jobs;
                  outcome_name r.Milp.outcome;
                  Printf.sprintf "%g" r.Milp.objective;
                  string_of_int r.Milp.nodes;
                  string_of_int r.Milp.steals;
                  Printf.sprintf "%.3f" r.Milp.solver_wall_s;
                  Printf.sprintf "%.3f" r.Milp.solver_busy_s;
                  Printf.sprintf "%.2f" speedup;
                ]
                :: !rows;
              Report.Json.Obj
                [
                  ("workers", Report.Json.Int jobs);
                  ("outcome", Report.Json.String (outcome_name r.Milp.outcome));
                  ("objective", Report.Json.Float r.Milp.objective);
                  ("nodes", Report.Json.Int r.Milp.nodes);
                  ("steals", Report.Json.Int r.Milp.steals);
                  ("wall_s", Report.Json.Float r.Milp.solver_wall_s);
                  ("busy_s", Report.Json.Float r.Milp.solver_busy_s);
                  ("speedup_vs_serial", Report.Json.Float speedup);
                ])
            widths
        in
        per_tech :=
          ( tech.Tech.name,
            Report.Json.Obj
              [
                ("clip", Report.Json.String clip.Clip.c_name);
                ("presolve", presolve_json);
                ("runs", Report.Json.List runs);
              ] )
          :: !per_tech;
        root_lp_study tech clip)
    Tech.all;
  print_string
    (Report.Table.render
       ~header:
         [
           "tech"; "clip"; "workers"; "outcome"; "objective"; "nodes";
           "steals"; "wall s"; "busy s"; "speedup";
         ]
       (List.rev !rows));
  let max_nodes = List.fold_left max 0 !serial_nodes in
  let note =
    let tree =
      if max_nodes <= 4 then
        Printf.sprintf
          "The bundled instances' LP relaxations are tight (largest serial \
           tree: %d node(s)), so branch and bound finishes at or near the \
           root and there is nothing for extra workers to steal — the runs \
           above verify the determinism contract and bound the spawn \
           overhead; the harness applies unchanged to larger instances \
           (OPTROUTER_BENCH_SCALE / paper-size clips) where trees grow."
          max_nodes
      else
        Printf.sprintf
          "speedup_vs_serial at 4 workers is the headline number (largest \
           serial tree: %d nodes)."
          max_nodes
    in
    if cores < 4 then
      Printf.sprintf
        "Host exposes %d core(s): the %d worker domains time-slice one \
         core, so no wall-clock speedup is measurable here regardless of \
         tree size. %s"
        cores
        (List.fold_left max 1 widths)
        tree
    else tree
  in
  Printf.printf "note: %s\n" note;
  banner "solver: root-LP pricing and warm starts";
  print_string
    (Report.Table.render
       ~header:
         [
           "tech"; "rule"; "mode"; "iters"; "flips"; "warm"; "wall ms";
           "objective"; "verified";
         ]
       (List.rev !root_rows));
  let root_lp_speedup =
    if !warm_total > 0.0 then !dantzig_total /. !warm_total else 0.0
  in
  Printf.printf
    "root-LP campaign: %.3f ms all-dantzig vs %.3f ms devex+warm => %.2fx\n"
    (!dantzig_total *. 1e3) (!warm_total *. 1e3) root_lp_speedup;
  ensure_results_dir ();
  let path = Filename.concat results_dir "BENCH_solver.json" in
  Report.Json.write_file path
    (Report.Json.Obj
       [
         ("widths", Report.Json.List (List.map (fun j -> Report.Json.Int j) widths));
         ("host_cores", Report.Json.Int cores);
         ("time_limit_s", Report.Json.Float time_limit);
         ("note", Report.Json.String note);
         ("per_tech", Report.Json.Obj (List.rev !per_tech));
         ("root_lp", Report.Json.Obj (List.rev !root_json));
         ("root_budget_s", Report.Json.Float root_budget);
         ("root_lp_speedup", Report.Json.Float root_lp_speedup);
       ]);
  Printf.printf "[solver bench written to %s]\n%!" path;
  if !mismatches > 0 then exit 1

(* Lagrangian decomposition at paper size: the exact solver cannot prove
   a 7x10-track 8-layer clip inside any smoke budget, but the
   sub-gradient mode routes it with a certified gap in fractions of a
   second. Per tech: [OPTROUTER_BENCH_LAG_CLIPS] generated paper-size
   clips ([Extract.paper_params] windows over scaled aes/m0 designs,
   top-k by difficulty) solved under RULE1 at pricing widths 1/2/4 —
   solutions must be byte-identical across widths (exit 1 otherwise) —
   plus an exact cross-check on the bundled sample clips where the ILP
   optimum is provable, bounding the true optimality gap. *)
let section_lagrangian () =
  banner "lagrangian: paper-size decomposition (-j 1/2/4)";
  let widths = [ 1; 2; 4 ] in
  let cores = Domain.recommended_domain_count () in
  let n_clips = max 1 (env_int "OPTROUTER_BENCH_LAG_CLIPS" 20) in
  let iters = env_int "OPTROUTER_BENCH_LAG_ITERS" 40 in
  let rules = Rules.rule 1 in
  let mismatches = ref 0 in
  let table = ref [] in
  let per_tech = ref [] in
  let solution_bytes (sol : Route.solution) =
    String.concat "|"
      (Array.to_list
         (Array.map
            (fun (r : Route.net_route) ->
              Printf.sprintf "%d:%s" r.Route.net
                (String.concat ","
                   (List.map string_of_int
                      (List.sort Int.compare r.Route.edges))))
            sol.Route.routes))
  in
  let lag_solve jobs g =
    Lagrangian.solve
      ~params:(Lagrangian.make_params ~jobs ~max_iters:iters ~round_every:10 ())
      ~rules g
  in
  List.iter
    (fun tech ->
      let designs =
        List.concat_map
          (fun profile ->
            List.mapi
              (fun i util ->
                Design.generate ~seed:(42 + i)
                  (Experiments.scaled_profile
                     bench_params.Experiments.instance_scale profile)
                  ~util tech)
              [ 0.90; 0.95 ])
          [ Design.aes; Design.m0 ]
      in
      let windows =
        List.concat_map (Extract.windows (Extract.paper_params tech)) designs
      in
      let clips = List.map fst (Extract.top_k n_clips windows) in
      let graphs =
        List.map (fun clip -> (clip, Graph.build ~tech ~rules clip)) clips
      in
      let n = List.length clips in
      let baseline = ref [] in
      let runs =
        List.map
          (fun jobs ->
            let t0 = Unix.gettimeofday () in
            let feasible = ref 0 and busy = ref 0.0 in
            let gaps = ref [] in
            let bytes =
              List.map
                (fun ((clip : Clip.t), g) ->
                  let r = lag_solve jobs g in
                  busy := !busy +. r.Lagrangian.busy_s;
                  (match r.Lagrangian.gap with
                  | Some gap -> gaps := gap :: !gaps
                  | None -> ());
                  match r.Lagrangian.solution with
                  | Some sol ->
                    incr feasible;
                    (clip.Clip.c_name, solution_bytes sol)
                  | None -> (clip.Clip.c_name, "<none>"))
                graphs
            in
            let wall = Unix.gettimeofday () -. t0 in
            (match !baseline with
            | [] -> baseline := bytes
            | base ->
              List.iter2
                (fun (name, b1) (_, bj) ->
                  if b1 <> bj then begin
                    incr mismatches;
                    Printf.printf
                      "MISMATCH: %s at %d pricing workers diverges from -j 1\n"
                      name jobs
                  end)
                base bytes);
            let frate =
              if n = 0 then 0.0 else float_of_int !feasible /. float_of_int n
            in
            let gap_max = List.fold_left Float.max 0.0 !gaps in
            let gap_mean =
              match !gaps with
              | [] -> 0.0
              | gs ->
                List.fold_left ( +. ) 0.0 gs /. float_of_int (List.length gs)
            in
            table :=
              [
                tech.Tech.name;
                string_of_int jobs;
                string_of_int n;
                Printf.sprintf "%d/%d" !feasible n;
                Printf.sprintf "%.3f" gap_mean;
                Printf.sprintf "%.3f" gap_max;
                Printf.sprintf "%.3f" wall;
                Printf.sprintf "%.3f" !busy;
              ]
              :: !table;
            (jobs, wall, !busy, !feasible, frate, gap_mean, gap_max))
          widths
      in
      let wall1 =
        match runs with (_, w, _, _, _, _, _) :: _ -> w | [] -> 0.0
      in
      let runs_json =
        List.map
          (fun (jobs, wall, busy, feas, frate, gmean, gmax) ->
            Report.Json.Obj
              [
                ("workers", Report.Json.Int jobs);
                ("wall_s", Report.Json.Float wall);
                ("busy_s", Report.Json.Float busy);
                ("feasible", Report.Json.Int feas);
                ("feasibility_rate", Report.Json.Float frate);
                ("gap_mean", Report.Json.Float gmean);
                ("gap_max", Report.Json.Float gmax);
                ( "speedup_vs_serial",
                  Report.Json.Float (if wall > 0.0 then wall1 /. wall else 0.0)
                );
              ])
          runs
      in
      let dims =
        match clips with
        | c :: _ ->
          Printf.sprintf "%dx%d tracks, %d layers" c.Clip.cols c.Clip.rows
            c.Clip.layers
        | [] -> "no clips"
      in
      per_tech :=
        ( tech.Tech.name,
          Report.Json.Obj
            [
              ("clips", Report.Json.Int n);
              ("dims", Report.Json.String dims);
              ("runs", Report.Json.List runs_json);
            ] )
        :: !per_tech)
    Tech.all;
  print_string
    (Report.Table.render
       ~header:
         [
           "tech"; "workers"; "clips"; "feasible"; "gap mean"; "gap max";
           "wall s"; "busy s";
         ]
       (List.rev !table));
  (* Exact cross-check: on the bundled clips the ILP optimum is provable,
     so the decomposition's dual bound and rounded primal sandwich a known
     value — CI gates the true gap at 5%. *)
  banner "lagrangian: exact cross-check (bundled clips, RULE1)";
  let tech = Tech.n28_12t in
  let crosscheck = ref [] in
  let cross_gap_max = ref 0.0 in
  (match Clipfile.read_file "data/samples.clips" with
  | Error e -> Printf.printf "(samples.clips unavailable: %s)\n" e
  | Ok clips ->
    List.iter
      (fun (clip : Clip.t) ->
        match (Optrouter.route ~tech ~rules clip).Optrouter.verdict with
        | Optrouter.Unroutable | Optrouter.Limit _ | Optrouter.Near_optimal _
          ->
          Printf.printf "%s: exact solve did not prove, skipped\n"
            clip.Clip.c_name
        | Optrouter.Routed exact ->
          let opt = exact.Route.metrics.cost in
          let g = Graph.build ~tech ~rules clip in
          let r = lag_solve 1 g in
          let primal =
            match r.Lagrangian.solution with
            | Some sol -> Some sol.Route.metrics.cost
            | None -> None
          in
          let gap_vs_exact =
            match primal with
            | Some p when p > 0 -> float_of_int (p - opt) /. float_of_int p
            | Some _ -> 0.0
            | None -> 1.0
          in
          cross_gap_max := Float.max !cross_gap_max gap_vs_exact;
          Printf.printf
            "%s: exact %d, lagrangian primal %s, dual >= %.0f, true gap %.4f\n"
            clip.Clip.c_name opt
            (match primal with Some p -> string_of_int p | None -> "-")
            r.Lagrangian.dual_bound gap_vs_exact;
          crosscheck :=
            Report.Json.Obj
              [
                ("clip", Report.Json.String clip.Clip.c_name);
                ("exact", Report.Json.Int opt);
                ( "primal",
                  match primal with
                  | Some p -> Report.Json.Int p
                  | None -> Report.Json.Null );
                ("dual_bound", Report.Json.Float r.Lagrangian.dual_bound);
                ("gap_vs_exact", Report.Json.Float gap_vs_exact);
              ]
            :: !crosscheck)
      clips);
  let note =
    let base =
      "speedup_vs_serial at 4 pricing workers is the headline number; \
       solutions are byte-identical across widths by construction."
    in
    if cores < 4 then
      Printf.sprintf
        "Host exposes %d core(s): the %d pricing domains time-slice one \
         core, so no wall-clock speedup is measurable here — the width \
         series verifies the determinism contract and bounds the fan-out \
         overhead. %s"
        cores
        (List.fold_left max 1 widths)
        base
    else base
  in
  Printf.printf "note: %s\n" note;
  ensure_results_dir ();
  let path = Filename.concat results_dir "BENCH_lagrangian.json" in
  Report.Json.write_file path
    (Report.Json.Obj
       [
         ( "widths",
           Report.Json.List (List.map (fun j -> Report.Json.Int j) widths) );
         ("host_cores", Report.Json.Int cores);
         ("max_iters", Report.Json.Int iters);
         ("clips_per_tech", Report.Json.Int n_clips);
         ("note", Report.Json.String note);
         ("paper_size", Report.Json.Obj (List.rev !per_tech));
         ( "exact_crosscheck",
           Report.Json.Obj
             [
               ("gap_vs_exact_max", Report.Json.Float !cross_gap_max);
               ("entries", Report.Json.List (List.rev !crosscheck));
             ] );
       ]);
  Printf.printf "[lagrangian bench written to %s]\n%!" path;
  if !mismatches > 0 then exit 1

(* Static model audit over the same difficult clips the sweep sections
   route: every (clip, applicable rule) formulation is built and audited,
   no ILP is solved. A nonzero error count fails the bench run — a
   formulation-coverage regression must not hide behind green timings. *)
let section_audit () =
  banner "audit: static formulation verification (no solving)";
  let t0 = Unix.gettimeofday () in
  let forms = ref 0 and errors = ref 0 and warnings = ref 0 in
  let per_tech =
    List.map
      (fun tech ->
        let clips = Experiments.difficult_clips ~params:bench_params tech in
        let rules = Experiments.rules_for tech in
        let tech_errors = ref 0 in
        List.iter
          (fun clip ->
            List.iter
              (fun (r : Rules.t) ->
                incr forms;
                let g = Graph.build ~tech ~rules:r clip in
                let form = Formulate.build ~rules:r g in
                let ds = Lp_audit.audit ~rules:r form in
                tech_errors := !tech_errors + Lp_audit.error_count ds;
                warnings :=
                  !warnings
                  + List.length (Lp_audit.by_severity Lp_audit.Warning ds);
                if Lp_audit.error_count ds > 0 then
                  Printf.printf "%s under %s:\n%s" clip.Clip.c_name
                    r.Rules.name
                    (Lp_audit.render (Lp_audit.by_severity Lp_audit.Error ds)))
              rules)
          clips;
        errors := !errors + !tech_errors;
        ( tech.Tech.name,
          Report.Json.Obj
            [
              ("clips", Report.Json.Int (List.length clips));
              ("rules", Report.Json.Int (List.length rules));
              ("errors", Report.Json.Int !tech_errors);
            ] ))
      Tech.all
  in
  let elapsed = Unix.gettimeofday () -. t0 in
  Printf.printf "audited %d formulations: %d errors, %d warnings (%.1f s)\n"
    !forms !errors !warnings elapsed;
  ensure_results_dir ();
  let path = Filename.concat results_dir "BENCH_audit.json" in
  Report.Json.write_file path
    (Report.Json.Obj
       [
         ("formulations", Report.Json.Int !forms);
         ("errors", Report.Json.Int !errors);
         ("warnings", Report.Json.Int !warnings);
         ("elapsed_s", Report.Json.Float elapsed);
         ("per_tech", Report.Json.Obj per_tech);
       ]);
  Printf.printf "[audit report written to %s]\n%!" path;
  if !errors > 0 then exit 1

(* ------------------------------------------------------------------ *)
(* serve: routing-as-a-service load generator                          *)
(* ------------------------------------------------------------------ *)

(* Drives a real daemon over a temp Unix socket: difficult N28-12T clips
   across several rule configurations, requested for several passes.
   Pass 1 is all cold solves; later passes must be answered from the
   cache, byte-identically — any proven-payload divergence fails the
   bench. Latencies are measured client-side (connect + frame + parse
   included, i.e. what a caller actually waits), split cold vs hit, and
   summarised as nearest-rank p50/p99 in results/BENCH_serve.json.

     OPTROUTER_BENCH_SERVE_CLIPS   clips requested      (default 2)
     OPTROUTER_BENCH_SERVE_RULES   rule configurations  (default 4)
     OPTROUTER_BENCH_SERVE_PASSES  passes over the set  (default 3) *)
let section_serve () =
  banner "serve: routing-as-a-service daemon + result cache";
  let tech = Tech.n28_12t in
  let passes = max 2 (env_int "OPTROUTER_BENCH_SERVE_PASSES" 3) in
  let nclips = env_int "OPTROUTER_BENCH_SERVE_CLIPS" 2 in
  let time_limit = env_float "OPTROUTER_BENCH_TIME" 15.0 in
  let clips =
    Experiments.difficult_clips
      ~params:{ bench_params with Experiments.top_clips = nclips }
      tech
  in
  let rule_ids =
    let applicable =
      List.filter
        (fun n -> Rules.applicable ~tech_name:tech.Tech.name (Rules.rule n))
        (List.init 11 (fun i -> i + 1))
    in
    let cap = env_int "OPTROUTER_BENCH_SERVE_RULES" 4 in
    List.filteri (fun i _ -> i < cap) applicable
  in
  let dir = Filename.temp_file "optrouter-serve-bench" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  let sock = Filename.concat dir "bench.sock" in
  let config =
    Optrouter.make_config
      ~milp:(Milp.make_params ~max_nodes:500_000 ~time_limit_s:time_limit ())
      ()
  in
  let engine =
    Serve.create
      (Serve.make_params
         ~cache_dir:(Filename.concat dir "cache")
         ~time_limit_s:time_limit ~config ())
  in
  let daemon =
    Domain.spawn (fun () -> Serve.run engine [ Serve.Unix_socket sock ])
  in
  let fd = Serve.connect (Serve.Unix_socket sock) in
  let baseline = Hashtbl.create 16 in
  let cold = ref [] in
  let hit = ref [] in
  let hit_count = ref 0 in
  let cold_count = ref 0 in
  let limits = ref 0 in
  let mismatches = ref 0 in
  let proven payload =
    String.length payload >= 9
    && (String.sub payload 0 14 = "verdict routed"
       || String.sub payload 0 9 = "verdict u")
  in
  for pass = 1 to passes do
    List.iteri
      (fun ci clip ->
        List.iter
          (fun rn ->
            let msg = Serve.text_request ~rule:rn (Clipfile.to_string clip) in
            let t0 = Unix.gettimeofday () in
            let frame = Serve.roundtrip fd msg in
            let latency = Unix.gettimeofday () -. t0 in
            match Serve.parse_response frame with
            | Ok (status, payload) ->
              (* Limit payloads are wall-clock artefacts: the cache never
                 serves them, and repeat solves may legitimately differ —
                 byte-identity is asserted for proven results only. *)
              if proven payload then begin
                match Hashtbl.find_opt baseline (ci, rn) with
                | None -> Hashtbl.replace baseline (ci, rn) payload
                | Some first ->
                  if first <> payload then begin
                    incr mismatches;
                    Printf.printf
                      "PAYLOAD MISMATCH: clip %d rule %d pass %d\n" ci rn pass
                  end
              end
              else incr limits;
              (match status with
              | Some (Serve.Hit_memory | Serve.Hit_disk) ->
                incr hit_count;
                hit := latency :: !hit
              | Some (Serve.Miss | Serve.Bypass) | None ->
                incr cold_count;
                cold := latency :: !cold)
            | Error e ->
              incr mismatches;
              Printf.printf "request failed (clip %d rule %d): %s\n" ci rn e)
          rule_ids)
      clips
  done;
  print_string (Serve.roundtrip fd (Serve.stats_line ^ "\n"));
  ignore (Serve.roundtrip fd (Serve.shutdown_line ^ "\n"));
  Domain.join daemon;
  Serve.destroy engine;
  (try Unix.close fd with Unix.Unix_error (_, _, _) -> ());
  let requests = !hit_count + !cold_count in
  let hit_rate =
    if requests = 0 then 0.0 else float_of_int !hit_count /. float_of_int requests
  in
  let pct p values = Report.Stats.percentile p (Array.of_list values) in
  let summary name values =
    match values with
    | [] ->
      Printf.printf "%s: no samples\n" name;
      Report.Json.Obj [ ("n", Report.Json.Int 0) ]
    | _ ->
      let p50 = pct 50.0 values and p99 = pct 99.0 values in
      Printf.printf "%s: n=%d p50=%.3f ms p99=%.3f ms\n" name
        (List.length values) (p50 *. 1e3) (p99 *. 1e3);
      Report.Json.Obj
        [
          ("n", Report.Json.Int (List.length values));
          ("p50_s", Report.Json.Float p50);
          ("p99_s", Report.Json.Float p99);
        ]
  in
  let cold_json = summary "cold (miss)" !cold in
  let hit_json = summary "cache hit" !hit in
  Printf.printf "requests=%d hits=%d misses=%d limits=%d hit rate=%.0f%%\n"
    requests !hit_count !cold_count !limits (100.0 *. hit_rate);
  ensure_results_dir ();
  let path = Filename.concat results_dir "BENCH_serve.json" in
  Report.Json.write_file path
    (Report.Json.Obj
       [
         ("tech", Report.Json.String tech.Tech.name);
         ("clips", Report.Json.Int (List.length clips));
         ( "rules",
           Report.Json.List (List.map (fun n -> Report.Json.Int n) rule_ids) );
         ("passes", Report.Json.Int passes);
         ("requests", Report.Json.Int requests);
         ("hits", Report.Json.Int !hit_count);
         ("misses", Report.Json.Int !cold_count);
         ("limits", Report.Json.Int !limits);
         ("hit_rate", Report.Json.Float hit_rate);
         ("cold", cold_json);
         ("hit", hit_json);
         ("mismatches", Report.Json.Int !mismatches);
       ]);
  Printf.printf "[serve bench written to %s]\n%!" path;
  if !mismatches > 0 then exit 1

let sections =
  [
    ("table2", section_table2);
    ("table3", section_table3);
    ("fig7", section_fig7);
    ("fig8", section_fig8);
    ("fig9", section_fig9);
    ("fig10a", fun () -> fig10_for "a" Tech.n28_12t);
    ("fig10b", fun () -> fig10_for "b" Tech.n28_8t);
    ("fig10c", fun () -> fig10_for "c" Tech.n7_9t);
    ("audit", section_audit);
    ("ilpsize", section_ilpsize);
    ("validate", section_validate);
    ("runtime", section_runtime);
    ("ablation", section_ablation);
    ("micro", section_micro);
    ("solver", section_solver);
    ("lagrangian", section_lagrangian);
    ("serve", section_serve);
  ]

let parse_args argv =
  let bad_jobs flag v =
    Printf.eprintf "bad %s value %S (want a positive integer)\n" flag v;
    exit 1
  in
  let rec go jobs sjobs use_reuse acc = function
    | [] -> (jobs, sjobs, use_reuse, List.rev acc)
    | "--no-reuse" :: rest -> go jobs sjobs false acc rest
    | "-j" :: v :: rest -> (
      match int_of_string_opt v with
      | Some n when n >= 1 -> go n sjobs use_reuse acc rest
      | Some _ | None -> bad_jobs "-j" v)
    | [ "-j" ] -> bad_jobs "-j" ""
    | "--solver-jobs" :: v :: rest -> (
      match int_of_string_opt v with
      | Some n when n >= 1 -> go jobs n use_reuse acc rest
      | Some _ | None -> bad_jobs "--solver-jobs" v)
    | [ "--solver-jobs" ] -> bad_jobs "--solver-jobs" ""
    | arg :: rest when String.length arg > 2 && String.sub arg 0 2 = "-j" -> (
      let v = String.sub arg 2 (String.length arg - 2) in
      match int_of_string_opt v with
      | Some n when n >= 1 -> go n sjobs use_reuse acc rest
      | Some _ | None -> bad_jobs "-j" v)
    | arg :: rest -> go jobs sjobs use_reuse (arg :: acc) rest
  in
  go (Pool.env_jobs ()) (Pool.env_solver_jobs ()) true []
    (List.tl (Array.to_list argv))

let () =
  let jobs, sjobs, use_reuse, args = parse_args Sys.argv in
  reuse := use_reuse;
  jobs_used := jobs;
  solver_jobs := sjobs;
  let requested = match args with [] -> List.map fst sections | _ -> args in
  if jobs >= 2 then pool := Some (Pool.create ~domains:jobs);
  let finally () = Option.iter Pool.shutdown !pool in
  Fun.protect ~finally (fun () ->
      List.iter
        (fun name ->
          match List.assoc_opt name sections with
          | Some f ->
            let t0 = Unix.gettimeofday () in
            f ();
            Printf.printf "[section %s: %.1f s]\n%!" name
              (Unix.gettimeofday () -. t0)
          | None ->
            Printf.eprintf "unknown section %S; available: %s\n" name
              (String.concat " " (List.map fst sections));
            exit 1)
        requested;
      if !sweep_sections_run > 0 then write_sweep_json ())
